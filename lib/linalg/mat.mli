(** Dense complex matrices, row-major, unboxed interleaved storage.

    The representation is a single flat [float array] of length
    [2 * rows * cols] holding (re, im) pairs, so kernels run on raw
    unboxed doubles.  Two API layers:

    - a functional API returning fresh matrices (cold paths: circuit
      simulation, ZX verification, tests);
    - destination-passing [_into] kernels writing into preallocated
      buffers (hot paths: GRAPE, the matrix exponential).

    Aliasing contract for the [_into] kernels: element-wise kernels
    ([add_into], [sub_into], [scale_re_into], [scale_into],
    [add_scaled_re_into]) allow [dst] to alias any input; [mul_into] and
    [adjoint_into] require [dst] distinct from every input and raise
    [Invalid_argument] when it is not.

    Error contract (repo-wide taxonomy, see lib/resilience/epoc_error.mli):
    every raise in this library is [Invalid_argument] for a violated
    precondition — dimension mismatch, non-square input, aliased
    destination — i.e. a programmer error, never a recoverable runtime
    condition.  Recoverable numerical failures (solver divergence,
    deadline) are the domain of [Epoc_error] in the layers above; no
    bare [Failure] escapes any library boundary. *)

type t

val rows : t -> int
val cols : t -> int

val data : t -> float array
(** Raw storage: [2 * rows * cols] floats, row-major, (re, im)
    interleaved.  Exposed so {!Batch} and {!Expm} can run fused
    {!Kernels} ops across [Mat] and batch-slice operands; mutating it
    bypasses every shape check, so treat it as read-only outside
    lib/linalg. *)

val create : int -> int -> t
(** [create rows cols] is the all-zero matrix. *)

val init : int -> int -> (int -> int -> Cx.t) -> t
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val zeros : int -> int -> t
val identity : int -> t
val of_arrays : Cx.t array array -> t
val of_complex_lists : Cx.t list list -> t
val dims_equal : t -> t -> bool
val map : (Cx.t -> Cx.t) -> t -> t
val map2 : (Cx.t -> Cx.t -> Cx.t) -> t -> t -> t

(** {1 Destination-passing kernels} *)

val copy_into : src:t -> dst:t -> unit
val fill_zero : t -> unit
val set_identity : t -> unit

val add_into : t -> t -> dst:t -> unit
(** [add_into a b ~dst] sets [dst <- a + b]; [dst] may alias [a] or [b]. *)

val sub_into : t -> t -> dst:t -> unit
(** [sub_into a b ~dst] sets [dst <- a - b]; [dst] may alias [a] or [b]. *)

val scale_re_into : float -> t -> dst:t -> unit
(** [scale_re_into s m ~dst] sets [dst <- s * m]; [dst] may alias [m]. *)

val scale_into : Cx.t -> t -> dst:t -> unit
(** [scale_into s m ~dst] sets [dst <- s * m]; [dst] may alias [m]. *)

val add_scaled_re_into : float -> t -> dst:t -> unit
(** [add_scaled_re_into s m ~dst] sets [dst <- dst + s * m]; the
    Hamiltonian-assembly axpy of the GRAPE inner loop. *)

val mul_into : t -> t -> dst:t -> unit
(** [mul_into a b ~dst] sets [dst <- a * b].  [dst] must not alias [a] or
    [b] (checked by physical equality; raises [Invalid_argument]). *)

val adjoint_into : t -> dst:t -> unit
(** [adjoint_into m ~dst] sets [dst <- m^dag].  [dst] must not alias [m]
    (checked). *)

val mix_rows_inplace : t -> rows:int array -> coeff:t -> scratch:t -> unit
(** [mix_rows_inplace u ~rows ~coeff ~scratch] sets
    [u[rows.(i), :] <- sum_j coeff[i][j] * u[rows.(j), :]] simultaneously
    for all [i] — the gate-application primitive of the circuit
    simulator.  [scratch] must be an [Array.length rows] x [cols u]
    matrix distinct from [u] and [coeff] (checked). *)

(** {1 Functional operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t
val scale_re : float -> t -> t
val transpose : t -> t
val conj : t -> t
val adjoint : t -> t
val mul : t -> t -> t
val mul_vec : t -> Cx.t array -> Cx.t array
val kron : t -> t -> t
val trace : t -> Cx.t

val trace_mul : t -> t -> Cx.t
(** [trace_mul a b] is [trace (mul a b)] without materializing the
    product; used for GRAPE gradient inner products. *)

val one_norm : t -> float
val frobenius_norm : t -> float
val max_abs : t -> float
val max_abs_diff : t -> t -> float
val approx_equal : ?eps:float -> t -> t -> bool
val is_square : t -> bool
val is_unitary : ?eps:float -> t -> bool
val is_hermitian : ?eps:float -> t -> bool
val is_diagonal : ?eps:float -> t -> bool

(** {1 Global-phase-invariant comparisons} *)

val hs_fidelity : t -> t -> float
val hs_distance : t -> t -> float
val equal_up_to_phase : ?eps:float -> t -> t -> bool
val canonical_phase : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
