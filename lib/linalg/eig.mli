(** Hermitian eigendecomposition by the classical complex Jacobi method.

    Robust for the small (at most 2^4 x 2^4) matrices this repository
    optimizes over; serves as the independent reference for {!Expm} in
    the test suite.

    Error contract: raises [Invalid_argument] on non-square input,
    never a recoverable runtime condition. *)

type decomposition = {
  eigenvalues : float array;  (** real; ascending order not guaranteed *)
  eigenvectors : Mat.t;  (** columns: H = V diag(eigenvalues) V^dag *)
}

val hermitian : ?eps:float -> ?max_sweeps:int -> Mat.t -> decomposition
(** Decompose a Hermitian matrix; iterates Jacobi sweeps until the
    off-diagonal Frobenius mass falls below [eps] (default 1e-24) or
    [max_sweeps] (default 100) is reached. *)

val apply_function : decomposition -> (float -> Cx.t) -> Mat.t
(** [apply_function d f] reconstructs [V diag(f l) V^dag]. *)

val expi_hermitian : Mat.t -> float -> Mat.t
(** [expi_hermitian h t] is [exp(-i * t * h)] via diagonalization; the
    reference implementation for {!Expm.expi_hermitian}. *)
