(** Persistent pulse store: the crash-safe on-disk half of the pulse library.

    A store maps the quantized, global-phase-canonical
    {!Epoc_pulse.Library.fingerprint} of a unitary to previously
    synthesized pulses, so a second [epoc] invocation reuses the first
    one's GRAPE results (exact hits) or starts GRAPE from a similar
    cached pulse (near hits).

    On-disk format, under the store directory:

    - [pulses.jsonl] — a versioned JSON header line followed by one JSON
      record per line.  Loading skips any unparsable line with a warning
      (a torn trailing write can only damage one record) and a header
      mismatch — foreign format, different [schema_version], different
      global-phase convention — makes the store start empty rather than
      mis-read the records.
    - [lock] — advisory lock file ([Unix.lockf]) serializing flushes
      between concurrent [epoc] processes.

    Flushes merge pending records with whatever other writers appended
    since the store was opened, write the merged file to a temp file in
    the same directory and atomically [Unix.rename] it into place.

    The JSONL machinery itself lives in {!Persistent.Make}; this module
    is its pulse instance (the other is {!Synth_store}). *)

open Epoc_linalg
open Epoc_pulse

(** Version of the on-disk record format, written into the header line.
    Bump when the record shape changes incompatibly. *)
val schema_version : int

(** [Logs] source for cache messages ("epoc.cache"). *)
val log_src : Logs.src

type entry = {
  unitary : Mat.t;  (** canonical-phase representative *)
  duration : float;  (** ns *)
  fidelity : float;
  pulse : Epoc_qoc.Grape.pulse option;
      (** control amplitudes, for warm starts *)
}

type t

(** [open_dir dir] creates [dir] if needed and loads every valid record
    from it.  [match_global_phase] (default [true]) selects the matching
    convention and must agree with the library the store backs; a store
    written under the other convention is ignored (and rewritten on the
    next flush). *)
val open_dir : ?match_global_phase:bool -> string -> t

(** Exact lookup: the stored entry whose unitary matches [u] (up to
    global phase when the store matches phases), if any. *)
val find : t -> Mat.t -> entry option

(** Closest stored pulse of the same dimension under the global-phase-
    invariant Hilbert-Schmidt distance, for seeding GRAPE.  Only entries
    carrying control amplitudes qualify.  [max_distance] (default 0.15)
    bounds how dissimilar a warm start may be. *)
val nearest : ?max_distance:float -> t -> Mat.t -> (entry * float) option

(** Queue a pulse for persistence (no-op if an equal unitary is already
    stored).  Thread-safe; nothing touches the disk until {!flush}. *)
val record :
  t ->
  Mat.t ->
  duration:float ->
  fidelity:float ->
  ?pulse:Epoc_qoc.Grape.pulse ->
  unit ->
  unit

(** Queue every library entry the store does not already hold.  Called at
    pipeline end, after candidate forks were absorbed, so one {!flush}
    persists the whole run's new pulses. *)
val absorb_library : t -> Library.t -> unit

(** Persist pending records under the in-process and on-disk locks,
    merging with concurrent writers' appends.  No-op when nothing is
    pending. *)
val flush : t -> unit

(** Number of entries currently held in memory (loaded + recorded). *)
val entry_count : t -> int

(** Number of records queued but not yet flushed. *)
val pending_count : t -> int

(** Number of records read from disk when the store was opened. *)
val loaded_count : t -> int

(** Number of unreadable lines skipped when the store was opened. *)
val skipped_count : t -> int

(** Number of distinct records on disk after the last {!flush} (or after
    {!open_dir}, before any flush).  Unlike {!entry_count} this never
    counts semantically equal records twice — e.g. after recovering a
    torn write whose record a concurrent writer also re-solved — so it
    is the value the pipeline reports as [cache.entries]. *)
val merged_count : t -> int
