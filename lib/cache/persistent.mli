(** Generic crash-safe JSONL persistence, the machinery shared by every
    on-disk store in EPOC.

    A store instance maps string fingerprints to buckets of entries and
    persists them as an append-only record file under a directory:

    - [C.records_file] — a versioned JSON header line followed by one
      JSON record per line.  Loading skips any unparsable line with a
      warning (a torn trailing write can only damage one record) and a
      header mismatch — foreign format, different schema version,
      different global-phase convention — makes the store start empty
      rather than mis-read foreign records (quarantine: the next flush
      rewrites the file under the current header).
    - [lock] — advisory lock file ([Unix.lockf]) serializing flushes
      between concurrent processes.

    Flushes re-read the record file under the in-process and on-disk
    locks, merge pending records after whatever other writers appended
    (dropping records the codec considers equal to ones already on
    disk), write the merged file to a temp file in the same directory
    and atomically [Unix.rename] it into place — readers always see
    either the old or the new complete file.

    The pulse {!Store} and the synthesis {!Synth_store} are the two
    instances. *)

(** [Logs] source for cache messages ("epoc.cache"). *)
val log_src : Logs.src

(** What a concrete store must supply: the entry type, the on-disk
    identity of the format, and convention-aware canonicalization,
    keying, equality and (de)serialization.  [match_global_phase] is
    threaded through because both current instances key matrices by the
    global-phase-canonical {!Epoc_pulse.Library.fingerprint} and must
    agree with the library convention of the run they serve. *)
module type CODEC = sig
  type entry

  (** Written into the header line; a store written by a different
      format is quarantined, not read. *)
  val format_name : string

  (** Version of the on-disk record shape; bump on incompatible
      change. *)
  val schema_version : int

  (** Record file name under the store directory. *)
  val records_file : string

  (** Canonical representative recorded and compared (e.g. the
      phase-canonical unitary). *)
  val canonical : match_global_phase:bool -> entry -> entry

  (** Bucket key of a canonical entry (e.g. fingerprint hex). *)
  val key : entry -> string

  (** Semantic equality of canonical entries, used to deduplicate both
      in memory and at flush-merge time. *)
  val equal : match_global_phase:bool -> entry -> entry -> bool

  (** One JSON line per record; [of_line] must never raise. *)
  val to_line : key:string -> entry -> string

  val of_line : string -> (entry, string) result
end

module Make (C : CODEC) : sig
  type t

  (** [open_dir dir] creates [dir] if needed and loads every valid
      record from it, deduplicating semantically equal records into one
      in-memory entry.  [match_global_phase] (default [true]) selects
      the matching convention and must agree with the library the store
      backs. *)
  val open_dir : ?match_global_phase:bool -> string -> t

  val dir : t -> string
  val match_global_phase : t -> bool

  (** First entry in [key]'s bucket satisfying the predicate. *)
  val find : t -> key:string -> (C.entry -> bool) -> C.entry option

  (** Fold over every in-memory entry, in unspecified order. *)
  val fold : t -> init:'a -> (C.entry -> 'a -> 'a) -> 'a

  (** Canonicalize, key and queue an entry for persistence (no-op if the
      codec says an equal entry is already held).  Thread-safe; nothing
      touches the disk until {!flush}. *)
  val record : t -> C.entry -> unit

  (** Persist pending records under the in-process and on-disk locks,
      merging with concurrent writers' appends; records semantically
      equal to ones already on disk are dropped rather than duplicated.
      No-op when nothing is pending. *)
  val flush : t -> unit

  (** Number of distinct entries currently held in memory. *)
  val entry_count : t -> int

  (** Number of records queued but not yet flushed. *)
  val pending_count : t -> int

  (** Number of valid records read from disk when the store was
      opened. *)
  val loaded_count : t -> int

  (** Number of unreadable lines skipped when the store was opened. *)
  val skipped_count : t -> int

  (** Number of distinct records known to be on disk after the last
      {!flush} (or after {!open_dir}, before any flush).  This is the
      durable-store size — unlike {!entry_count} it never counts a
      record twice and unlike {!loaded_count} it tracks flush merges, so
      it is the right value for the [cache.entries] gauge. *)
  val merged_count : t -> int
end
