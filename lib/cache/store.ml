(* Persistent pulse store: the on-disk half of the pulse library.

   EPOC's in-memory library only amortizes GRAPE work *within* one
   compilation; AccQOC-style pre-generated caches amortize it across
   runs.  A [Store.t] mirrors the library's keying — the quantized,
   global-phase-canonical [Library.fingerprint] — onto an append-only
   record file so a second `epoc` invocation on the same (or a similar)
   circuit starts from the previous run's pulses.

   On-disk layout, under the store directory:

     pulses.jsonl   header line + one JSON record per line (append-only)
     lock           advisory lock file serializing flushes across processes
     .pulses.jsonl.tmp.<pid>   transient; flushes write here, then rename

   The header line carries {"format", "schema_version", "match_global_phase"};
   a version or phase-convention mismatch makes the store start empty (with
   a warning) rather than mis-read foreign records.  Records are one JSON
   object per line, so a crash mid-write can only damage the trailing
   record; loading skips any unparsable line with a warning and never
   raises.  Flushes re-read the file under the file lock, merge the
   pending records after whatever other writers appended, write the merged
   file to a temp file in the same directory and [Unix.rename] it into
   place — readers always see either the old or the new complete file.

   Concurrency: the in-process [t.lock] mutex guards the table and the
   pending queue; [flush_lock] serializes flushes between domains of one
   process (POSIX record locks do not exclude threads of the owning
   process); [Unix.lockf] on the lock file serializes flushes between
   processes. *)

open Epoc_linalg
open Epoc_pulse
module Json = Epoc_obs.Json

let log_src = Logs.Src.create "epoc.cache" ~doc:"EPOC persistent pulse cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

let schema_version = 1
let format_name = "epoc-pulse-cache"
let records_file = "pulses.jsonl"
let lock_file = "lock"

type entry = {
  unitary : Mat.t; (* canonical-phase representative *)
  duration : float; (* ns *)
  fidelity : float;
  pulse : Epoc_qoc.Grape.pulse option; (* control amplitudes, for warm starts *)
}

type t = {
  dir : string;
  match_global_phase : bool;
  lock : Mutex.t;
  table : (string, entry list) Hashtbl.t; (* fingerprint hex -> bucket *)
  mutable loaded : int; (* records read at open *)
  mutable skipped : int; (* unparsable lines skipped at open *)
  mutable pending : string list; (* serialized records awaiting flush, newest first *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* One flush at a time per process; cross-process exclusion is the file
   lock taken inside [flush]. *)
let flush_lock = Mutex.create ()

let path t = Filename.concat t.dir records_file

(* --- (de)serialization ---------------------------------------------------- *)

let mat_to_json (u : Mat.t) =
  let dim = Mat.rows u in
  let flat = ref [] in
  for r = dim - 1 downto 0 do
    for c = dim - 1 downto 0 do
      let z = Mat.get u r c in
      flat := Json.Num (Cx.re z) :: Json.Num (Cx.im z) :: !flat
    done
  done;
  Json.Arr !flat

let mat_of_json dim j =
  match Json.to_list j with
  | Some l when List.length l = 2 * dim * dim ->
      let a = Array.of_list (List.filter_map Json.to_num l) in
      if Array.length a <> 2 * dim * dim then None
      else
        Some
          (Mat.init dim dim (fun r c ->
               let i = 2 * ((r * dim) + c) in
               Cx.make a.(i) a.(i + 1)))
  | _ -> None

let pulse_to_json (p : Epoc_qoc.Grape.pulse) =
  Json.Obj
    [
      ("dt", Json.Num p.Epoc_qoc.Grape.dt);
      ( "labels",
        Json.Arr
          (Array.to_list (Array.map (fun l -> Json.Str l) p.Epoc_qoc.Grape.labels))
      );
      ( "amplitudes",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.Arr (Array.to_list (Array.map (fun v -> Json.Num v) row)))
                p.Epoc_qoc.Grape.amplitudes)) );
    ]

let pulse_of_json j =
  match
    ( Option.bind (Json.member "dt" j) Json.to_num,
      Option.bind (Json.member "labels" j) Json.to_list,
      Option.bind (Json.member "amplitudes" j) Json.to_list )
  with
  | Some dt, Some labels, Some rows ->
      let labels = List.filter_map Json.to_str labels in
      let amps =
        List.map
          (fun row ->
            Option.map
              (fun l -> Array.of_list (List.filter_map Json.to_num l))
              (Json.to_list row))
          rows
      in
      if List.exists Option.is_none amps then None
      else
        Some
          {
            Epoc_qoc.Grape.dt;
            labels = Array.of_list labels;
            amplitudes = Array.of_list (List.filter_map Fun.id amps);
          }
  | _ -> None

let key_of (cu : Mat.t) = Digest.to_hex (Library.fingerprint cu)

let record_to_line key (e : entry) =
  Json.to_string
    (Json.Obj
       [
         ("key", Json.Str key);
         ("dim", Json.of_int (Mat.rows e.unitary));
         ("duration", Json.Num e.duration);
         ("fidelity", Json.Num e.fidelity);
         ("unitary", mat_to_json e.unitary);
         ( "pulse",
           match e.pulse with None -> Json.Null | Some p -> pulse_to_json p );
       ])

let record_of_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> (
      match
        ( Option.bind (Json.member "dim" j) Json.to_int,
          Option.bind (Json.member "duration" j) Json.to_num,
          Option.bind (Json.member "fidelity" j) Json.to_num,
          Json.member "unitary" j )
      with
      | Some dim, Some duration, Some fidelity, Some uj when dim >= 1 -> (
          match mat_of_json dim uj with
          | None -> Error "bad unitary array"
          | Some unitary ->
              let pulse =
                match Json.member "pulse" j with
                | None | Some Json.Null -> None
                | Some pj -> pulse_of_json pj
              in
              Ok { unitary; duration; fidelity; pulse })
      | _ -> Error "missing record fields")

let header_line match_global_phase =
  Json.to_string
    (Json.Obj
       [
         ("format", Json.Str format_name);
         ("schema_version", Json.of_int schema_version);
         ("match_global_phase", Json.Bool match_global_phase);
       ])

(* Header check: [Ok ()] to use the records, [Error reason] to ignore the
   file's contents (the next flush rewrites it under the current header). *)
let check_header match_global_phase line =
  match Json.parse line with
  | Error m -> Error ("unreadable header: " ^ m)
  | Ok j -> (
      match
        ( Option.bind (Json.member "format" j) Json.to_str,
          Option.bind (Json.member "schema_version" j) Json.to_int,
          Json.member "match_global_phase" j )
      with
      | Some f, _, _ when f <> format_name -> Error ("foreign format " ^ f)
      | _, Some v, _ when v <> schema_version ->
          Error
            (Printf.sprintf "schema_version %d (this build speaks %d)" v
               schema_version)
      | _, None, _ -> Error "missing schema_version"
      | _, _, Some (Json.Bool p) when p <> match_global_phase ->
          Error "different global-phase matching convention"
      | _ -> Ok ())

(* --- matching ------------------------------------------------------------- *)

let canonical t u = if t.match_global_phase then Mat.canonical_phase u else u

let entry_matches t (stored : Mat.t) probe =
  if t.match_global_phase then Mat.equal_up_to_phase ~eps:1e-6 stored probe
  else Mat.approx_equal ~eps:1e-6 stored probe

(* --- open / load ----------------------------------------------------------- *)

let rec mkdir_p dir =
  let parent = Filename.dirname dir in
  if parent <> dir && not (Sys.file_exists parent) then mkdir_p parent;
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_lines file =
  match In_channel.with_open_bin file In_channel.input_all with
  | contents ->
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
  | exception Sys_error _ -> []

let add_to_table t key entry =
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
  Hashtbl.replace t.table key (bucket @ [ entry ])

(* Load every valid record line; unparsable lines (a torn trailing write,
   manual editing) are counted and skipped, never fatal. *)
let load_records t lines =
  List.iteri
    (fun i line ->
      match record_of_line line with
      | Ok e ->
          let cu = canonical t e.unitary in
          add_to_table t (key_of cu) { e with unitary = cu };
          t.loaded <- t.loaded + 1
      | Error m ->
          t.skipped <- t.skipped + 1;
          Log.warn (fun f ->
              f "cache %s: skipping unreadable record %d (%s)" (path t) (i + 2) m))
    lines

let open_dir ?(match_global_phase = true) dir =
  mkdir_p dir;
  let t =
    {
      dir;
      match_global_phase;
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      loaded = 0;
      skipped = 0;
      pending = [];
    }
  in
  (match read_lines (path t) with
  | [] -> ()
  | header :: records -> (
      match check_header match_global_phase header with
      | Ok () -> load_records t records
      | Error reason ->
          Log.warn (fun f ->
              f "cache %s: ignoring existing store (%s); it will be rewritten"
                (path t) reason)));
  Log.debug (fun f ->
      f "cache %s: %d entries loaded, %d lines skipped" (path t) t.loaded
        t.skipped);
  t

(* --- queries --------------------------------------------------------------- *)

let entry_count t =
  locked t (fun () ->
      Hashtbl.fold (fun _ b acc -> acc + List.length b) t.table 0)

let pending_count t = locked t (fun () -> List.length t.pending)
let loaded_count t = t.loaded
let skipped_count t = t.skipped

let find t (u : Mat.t) =
  let cu = canonical t u in
  let key = key_of cu in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      List.find_opt (fun e -> entry_matches t e.unitary cu) bucket)

(* Closest stored pulse of the same dimension under the global-phase-
   invariant Hilbert-Schmidt distance; only entries that carry control
   amplitudes qualify (the point is seeding GRAPE).  [max_distance]
   bounds how dissimilar a warm start may be — past it, a random cold
   start converges just as fast. *)
let nearest ?(max_distance = 0.15) t (u : Mat.t) =
  let cu = canonical t u in
  let dim = Mat.rows cu in
  locked t (fun () ->
      Hashtbl.fold
        (fun _ bucket best ->
          List.fold_left
            (fun best e ->
              if e.pulse = None || Mat.rows e.unitary <> dim then best
              else
                let d = Mat.hs_distance e.unitary cu in
                match best with
                | Some (_, bd) when bd <= d -> best
                | _ when d <= max_distance -> Some (e, d)
                | _ -> best)
            best bucket)
        t.table None)

(* --- recording / flush ----------------------------------------------------- *)

let record t (u : Mat.t) ~duration ~fidelity ?pulse () =
  let cu = canonical t u in
  let key = key_of cu in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      if not (List.exists (fun e -> entry_matches t e.unitary cu) bucket) then begin
        let e = { unitary = cu; duration; fidelity; pulse } in
        Hashtbl.replace t.table key (bucket @ [ e ]);
        t.pending <- record_to_line key e :: t.pending
      end)

(* Queue every library entry the store does not already hold.  Called at
   pipeline end, after the candidate forks have been absorbed back into
   the shared library, so one flush persists the whole run's new pulses. *)
let absorb_library t (lib : Library.t) =
  Library.fold_entries lib ~init:() (fun (e : Library.entry) () ->
      record t e.Library.unitary ~duration:e.Library.duration
        ~fidelity:e.Library.fidelity ?pulse:e.Library.pulse ())

let with_file_lock t f =
  let lock_path = Filename.concat t.dir lock_file in
  let fd = Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect ~finally:(fun () -> Unix.lockf fd Unix.F_ULOCK 0) f)

(* Persist pending records.  Under the locks, the record file is re-read
   raw so entries appended by other invocations since [open_dir] survive;
   our pending lines land after them (minus exact duplicates), and the
   merged file replaces the old one atomically. *)
let flush t =
  let pending = locked t (fun () -> List.rev t.pending) in
  if pending <> [] then begin
    Mutex.lock flush_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock flush_lock)
      (fun () ->
        with_file_lock t (fun () ->
            let disk =
              match read_lines (path t) with
              | [] -> []
              | header :: records -> (
                  match check_header t.match_global_phase header with
                  | Ok () ->
                      List.filter
                        (fun l -> Result.is_ok (record_of_line l))
                        records
                  | Error _ -> [])
            in
            let fresh =
              List.filter (fun l -> not (List.mem l disk)) pending
            in
            let tmp =
              Filename.concat t.dir
                (Printf.sprintf ".%s.tmp.%d" records_file (Unix.getpid ()))
            in
            let oc = open_out_bin tmp in
            (try
               output_string oc (header_line t.match_global_phase);
               output_char oc '\n';
               List.iter
                 (fun l ->
                   output_string oc l;
                   output_char oc '\n')
                 (disk @ fresh);
               close_out oc
             with e ->
               close_out_noerr oc;
               (try Sys.remove tmp with Sys_error _ -> ());
               raise e);
            Unix.rename tmp (path t);
            Log.debug (fun f ->
                f "cache %s: flushed %d new record%s (%d on disk)" (path t)
                  (List.length fresh)
                  (if List.length fresh = 1 then "" else "s")
                  (List.length disk + List.length fresh))));
    locked t (fun () -> t.pending <- [])
  end
