(* Persistent pulse store: the on-disk half of the pulse library.

   EPOC's in-memory library only amortizes GRAPE work *within* one
   compilation; AccQOC-style pre-generated caches amortize it across
   runs.  A [Store.t] mirrors the library's keying — the quantized,
   global-phase-canonical [Library.fingerprint] — onto an append-only
   record file so a second `epoc` invocation on the same (or a similar)
   circuit starts from the previous run's pulses.

   All of the JSONL mechanics — versioned header, quarantine on header
   mismatch, torn-trailing-record skip, lockf + mutex flush locking,
   atomic merge-flush — live in the generic [Persistent.Make] functor;
   this module is the pulse codec plus the pulse-shaped queries (exact
   [find], Hilbert-Schmidt [nearest] for GRAPE warm starts,
   [absorb_library]). *)

open Epoc_linalg
open Epoc_pulse
module Json = Epoc_obs.Json

let log_src = Persistent.log_src
let schema_version = 1

type entry = {
  unitary : Mat.t; (* canonical-phase representative *)
  duration : float; (* ns *)
  fidelity : float;
  pulse : Epoc_qoc.Grape.pulse option; (* control amplitudes, for warm starts *)
}

(* --- (de)serialization ---------------------------------------------------- *)

let pulse_to_json (p : Epoc_qoc.Grape.pulse) =
  Json.Obj
    [
      ("dt", Json.Num p.Epoc_qoc.Grape.dt);
      ( "labels",
        Json.Arr
          (Array.to_list (Array.map (fun l -> Json.Str l) p.Epoc_qoc.Grape.labels))
      );
      ( "amplitudes",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.Arr (Array.to_list (Array.map (fun v -> Json.Num v) row)))
                p.Epoc_qoc.Grape.amplitudes)) );
    ]

let pulse_of_json j =
  match
    ( Option.bind (Json.member "dt" j) Json.to_num,
      Option.bind (Json.member "labels" j) Json.to_list,
      Option.bind (Json.member "amplitudes" j) Json.to_list )
  with
  | Some dt, Some labels, Some rows ->
      let labels = List.filter_map Json.to_str labels in
      let amps =
        List.map
          (fun row ->
            Option.map
              (fun l -> Array.of_list (List.filter_map Json.to_num l))
              (Json.to_list row))
          rows
      in
      if List.exists Option.is_none amps then None
      else
        Some
          {
            Epoc_qoc.Grape.dt;
            labels = Array.of_list labels;
            amplitudes = Array.of_list (List.filter_map Fun.id amps);
          }
  | _ -> None

let entry_matches ~match_global_phase (stored : Mat.t) probe =
  if match_global_phase then Mat.equal_up_to_phase ~eps:1e-6 stored probe
  else Mat.approx_equal ~eps:1e-6 stored probe

module Codec = struct
  type nonrec entry = entry

  let format_name = "epoc-pulse-cache"
  let schema_version = schema_version
  let records_file = "pulses.jsonl"

  let canonical ~match_global_phase e =
    if match_global_phase then { e with unitary = Mat.canonical_phase e.unitary }
    else e

  let key e = Digest.to_hex (Library.fingerprint e.unitary)

  let equal ~match_global_phase a b =
    entry_matches ~match_global_phase a.unitary b.unitary

  let to_line ~key (e : entry) =
    Json.to_string
      (Json.Obj
         [
           ("key", Json.Str key);
           ("dim", Json.of_int (Mat.rows e.unitary));
           ("duration", Json.Num e.duration);
           ("fidelity", Json.Num e.fidelity);
           ("unitary", Mat_json.to_json e.unitary);
           ( "pulse",
             match e.pulse with None -> Json.Null | Some p -> pulse_to_json p );
         ])

  let of_line line =
    match Json.parse line with
    | Error m -> Error m
    | Ok j -> (
        match
          ( Option.bind (Json.member "dim" j) Json.to_int,
            Option.bind (Json.member "duration" j) Json.to_num,
            Option.bind (Json.member "fidelity" j) Json.to_num,
            Json.member "unitary" j )
        with
        | Some dim, Some duration, Some fidelity, Some uj when dim >= 1 -> (
            match Mat_json.of_json dim uj with
            | None -> Error "bad unitary array"
            | Some unitary ->
                let pulse =
                  match Json.member "pulse" j with
                  | None | Some Json.Null -> None
                  | Some pj -> pulse_of_json pj
                in
                Ok { unitary; duration; fidelity; pulse })
        | _ -> Error "missing record fields")
end

module P = Persistent.Make (Codec)

type t = P.t

let open_dir = P.open_dir

(* --- queries --------------------------------------------------------------- *)

let entry_count = P.entry_count
let pending_count = P.pending_count
let loaded_count = P.loaded_count
let skipped_count = P.skipped_count
let merged_count = P.merged_count

let canonical t u =
  if P.match_global_phase t then Mat.canonical_phase u else u

let find t (u : Mat.t) =
  let cu = canonical t u in
  let probe = { unitary = cu; duration = 0.0; fidelity = 0.0; pulse = None } in
  P.find t ~key:(Codec.key probe) (fun e ->
      entry_matches ~match_global_phase:(P.match_global_phase t) e.unitary cu)

(* Closest stored pulse of the same dimension under the global-phase-
   invariant Hilbert-Schmidt distance; only entries that carry control
   amplitudes qualify (the point is seeding GRAPE).  [max_distance]
   bounds how dissimilar a warm start may be — past it, a random cold
   start converges just as fast. *)
let nearest ?(max_distance = 0.15) t (u : Mat.t) =
  let cu = canonical t u in
  let dim = Mat.rows cu in
  P.fold t ~init:None (fun e best ->
      if e.pulse = None || Mat.rows e.unitary <> dim then best
      else
        let d = Mat.hs_distance e.unitary cu in
        match best with
        | Some (_, bd) when bd <= d -> best
        | _ when d <= max_distance -> Some (e, d)
        | _ -> best)

(* --- recording / flush ----------------------------------------------------- *)

let record t (u : Mat.t) ~duration ~fidelity ?pulse () =
  P.record t { unitary = u; duration; fidelity; pulse }

(* Queue every library entry the store does not already hold.  Called at
   pipeline end, after the candidate forks have been absorbed back into
   the shared library, so one flush persists the whole run's new pulses. *)
let absorb_library t (lib : Library.t) =
  Library.fold_entries lib ~init:() (fun (e : Library.entry) () ->
      record t e.Library.unitary ~duration:e.Library.duration
        ~fidelity:e.Library.fidelity ?pulse:e.Library.pulse ())

let flush = P.flush
