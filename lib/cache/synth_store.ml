(* Persistent synthesis store: the second instance of [Persistent.Make].

   A record is one synthesized block: the canonical block unitary (for
   hit verification), the VUG + CNOT circuit QSearch produced, and the
   attempt metadata (source, instantiation distance, search counters).
   Circuits serialize as an op list; named gates round-trip through
   (name, params) and [Unitary] gates carry their matrix inline, so a
   replayed circuit is structurally identical — same gates, same float
   bits — to the one the cold run synthesized. *)

open Epoc_linalg
open Epoc_pulse
open Epoc_circuit
open Epoc_synthesis
module Json = Epoc_obs.Json

let schema_version = 1

type entry = {
  unitary : Mat.t;
  circuit : Circuit.t;
  source : Synthesis.source;
  distance : float;
  expansions : int;
  prunes : int;
}

(* --- gate / circuit (de)serialization -------------------------------------- *)

let gate_to_json (g : Gate.t) =
  let base = [ ("g", Json.Str (Gate.name g)) ] in
  match g with
  | Gate.Unitary { matrix; _ } ->
      Json.Obj
        (base
        @ [
            ("gd", Json.of_int (Mat.rows matrix));
            ("m", Mat_json.to_json matrix);
          ])
  | _ -> (
      match Gate.params g with
      | [] -> Json.Obj base
      | ps -> Json.Obj (base @ [ ("p", Json.Arr (List.map (fun v -> Json.Num v) ps)) ]))

let gate_of_parts name (params : float list) (matrix : Mat.t option) :
    Gate.t option =
  match (name, params) with
  | "id", [] -> Some Gate.I
  | "x", [] -> Some Gate.X
  | "y", [] -> Some Gate.Y
  | "z", [] -> Some Gate.Z
  | "h", [] -> Some Gate.H
  | "s", [] -> Some Gate.S
  | "sdg", [] -> Some Gate.Sdg
  | "t", [] -> Some Gate.T
  | "tdg", [] -> Some Gate.Tdg
  | "sx", [] -> Some Gate.SX
  | "sxdg", [] -> Some Gate.SXdg
  | "rx", [ a ] -> Some (Gate.RX a)
  | "ry", [ a ] -> Some (Gate.RY a)
  | "rz", [ a ] -> Some (Gate.RZ a)
  | "p", [ a ] -> Some (Gate.Phase a)
  | "u3", [ a; b; c ] -> Some (Gate.U3 (a, b, c))
  | "cx", [] -> Some Gate.CX
  | "cy", [] -> Some Gate.CY
  | "cz", [] -> Some Gate.CZ
  | "ch", [] -> Some Gate.CH
  | "swap", [] -> Some Gate.SWAP
  | "iswap", [] -> Some Gate.ISWAP
  | "crx", [ a ] -> Some (Gate.CRX a)
  | "cry", [ a ] -> Some (Gate.CRY a)
  | "crz", [ a ] -> Some (Gate.CRZ a)
  | "cp", [ a ] -> Some (Gate.CPhase a)
  | "rxx", [ a ] -> Some (Gate.RXX a)
  | "ryy", [ a ] -> Some (Gate.RYY a)
  | "rzz", [ a ] -> Some (Gate.RZZ a)
  | "ccx", [] -> Some Gate.CCX
  | "ccz", [] -> Some Gate.CCZ
  | "cswap", [] -> Some Gate.CSWAP
  | _ -> (
      (* Anything else (VUGs, daggered composites) must carry its matrix. *)
      match matrix with
      | Some m -> Some (Gate.Unitary { name; matrix = m })
      | None -> None)

let gate_of_json j =
  match Option.bind (Json.member "g" j) Json.to_str with
  | None -> None
  | Some name ->
      let params =
        match Json.member "p" j with
        | Some pj ->
            Option.value ~default:[]
              (Option.map (List.filter_map Json.to_num) (Json.to_list pj))
        | None -> []
      in
      let matrix =
        match
          ( Option.bind (Json.member "gd" j) Json.to_int,
            Json.member "m" j )
        with
        | Some gd, Some mj when gd >= 1 -> Mat_json.of_json gd mj
        | _ -> None
      in
      gate_of_parts name params matrix

let op_to_json (op : Circuit.op) =
  match gate_to_json op.Circuit.gate with
  | Json.Obj fields ->
      Json.Obj
        (fields @ [ ("q", Json.Arr (List.map Json.of_int op.Circuit.qubits)) ])
  | j -> j

let op_of_json j =
  match
    ( gate_of_json j,
      Option.bind (Json.member "q" j) Json.to_list )
  with
  | Some gate, Some qs ->
      let qubits = List.filter_map Json.to_int qs in
      if List.length qubits = List.length qs then
        Some { Circuit.gate; qubits }
      else None
  | _ -> None

let circuit_to_json (c : Circuit.t) =
  Json.Obj
    [
      ("n", Json.of_int (Circuit.n_qubits c));
      ("ops", Json.Arr (List.map op_to_json (Circuit.ops c)));
    ]

let circuit_of_json j =
  match
    ( Option.bind (Json.member "n" j) Json.to_int,
      Option.bind (Json.member "ops" j) Json.to_list )
  with
  | Some n, Some ops when n >= 1 ->
      let parsed = List.map op_of_json ops in
      if List.exists Option.is_none parsed then None
      else begin
        (* [of_ops] validates arities and qubit ranges; a corrupt record
           must surface as a skipped line, never an exception. *)
        try Some (Circuit.of_ops n (List.filter_map Fun.id parsed))
        with Invalid_argument _ -> None
      end
  | _ -> None

let source_to_string = function
  | Synthesis.Synthesized -> "synthesized"
  | Synthesis.Fallback -> "fallback"

let source_of_string = function
  | "synthesized" -> Some Synthesis.Synthesized
  | "fallback" -> Some Synthesis.Fallback
  | _ -> None

(* --- the codec -------------------------------------------------------------- *)

let entry_matches ~match_global_phase (stored : Mat.t) probe =
  if match_global_phase then Mat.equal_up_to_phase ~eps:1e-6 stored probe
  else Mat.approx_equal ~eps:1e-6 stored probe

module Codec = struct
  type nonrec entry = entry

  let format_name = "epoc-synth-cache"
  let schema_version = schema_version
  let records_file = "synth.jsonl"

  let canonical ~match_global_phase e =
    if match_global_phase then { e with unitary = Mat.canonical_phase e.unitary }
    else e

  let key e = Digest.to_hex (Library.fingerprint e.unitary)

  let equal ~match_global_phase a b =
    entry_matches ~match_global_phase a.unitary b.unitary

  let to_line ~key (e : entry) =
    Json.to_string
      (Json.Obj
         [
           ("key", Json.Str key);
           ("dim", Json.of_int (Mat.rows e.unitary));
           ("source", Json.Str (source_to_string e.source));
           ("distance", Json.Num e.distance);
           ("expansions", Json.of_int e.expansions);
           ("prunes", Json.of_int e.prunes);
           ("unitary", Mat_json.to_json e.unitary);
           ("circuit", circuit_to_json e.circuit);
         ])

  let of_line line =
    match Json.parse line with
    | Error m -> Error m
    | Ok j -> (
        match
          ( Option.bind (Json.member "dim" j) Json.to_int,
            Option.bind (Json.member "source" j) Json.to_str,
            Option.bind (Json.member "distance" j) Json.to_num,
            Json.member "unitary" j,
            Json.member "circuit" j )
        with
        | Some dim, Some src, Some distance, Some uj, Some cj when dim >= 1
          -> (
            match
              (Mat_json.of_json dim uj, circuit_of_json cj, source_of_string src)
            with
            | Some unitary, Some circuit, Some source ->
                let int_field name =
                  Option.value ~default:0
                    (Option.bind (Json.member name j) Json.to_int)
                in
                Ok
                  {
                    unitary;
                    circuit;
                    source;
                    distance;
                    expansions = int_field "expansions";
                    prunes = int_field "prunes";
                  }
            | None, _, _ -> Error "bad unitary array"
            | _, None, _ -> Error "bad circuit"
            | _, _, None -> Error ("unknown source " ^ src))
        | _ -> Error "missing record fields")
end

module P = Persistent.Make (Codec)

type t = P.t

let open_dir = P.open_dir
let entry_count = P.entry_count
let pending_count = P.pending_count
let loaded_count = P.loaded_count
let skipped_count = P.skipped_count
let merged_count = P.merged_count
let flush = P.flush

let probe_entry u =
  {
    unitary = u;
    circuit = Circuit.empty 1;
    source = Synthesis.Fallback;
    distance = 0.0;
    expansions = 0;
    prunes = 0;
  }

let find t (u : Mat.t) =
  let cu = if P.match_global_phase t then Mat.canonical_phase u else u in
  P.find t ~key:(Codec.key (probe_entry cu)) (fun e ->
      entry_matches ~match_global_phase:(P.match_global_phase t) e.unitary cu)

let record t (u : Mat.t) (r : Synthesis.block_result) =
  if r.Synthesis.failure = None then
    P.record t
      {
        unitary = u;
        circuit = r.Synthesis.circuit;
        source = r.Synthesis.source;
        distance = r.Synthesis.distance;
        expansions = r.Synthesis.expansions;
        prunes = r.Synthesis.prunes;
      }

let to_block_result (e : entry) : Synthesis.block_result =
  {
    Synthesis.circuit = e.circuit;
    source = e.source;
    distance = e.distance;
    expansions = 0;
    prunes = 0;
    open_max = 0;
    failure = None;
  }
