(** Persistent synthesis store: fingerprint-keyed cache of synthesized
    per-block circuits (VUG + CNOT structure plus attempt metadata).

    QSearch dominates cold compile time; its outcome for a block is a
    pure function of the block unitary and the search options, so a
    warm recompile of the same (or an overlapping) benchmark family can
    skip synthesis entirely by replaying the stored circuit.  Keys are
    the same quantized, global-phase-canonical
    {!Epoc_pulse.Library.fingerprint} the pulse store uses; a hit is
    verified against the stored unitary before being trusted.

    Records that carry a [failure] (deadline expiry, injected fault)
    are never stored — an abnormal fallback must be re-attempted, not
    replayed.  Replayed results zero the search counters ([expansions],
    [prunes], [open_max]) so warm-run telemetry shows no QSearch
    activity; the cold run's counts are kept in the record as
    schema-versioned attempt metadata.

    Second instance of {!Persistent.Make} (the first is the pulse
    {!Store}); same on-disk guarantees — versioned header, quarantine,
    torn-write skip, locked atomic merge-flush. *)

open Epoc_linalg
open Epoc_circuit
open Epoc_synthesis

(** Version of the on-disk record format, written into the header line. *)
val schema_version : int

type entry = {
  unitary : Mat.t;  (** canonical-phase block unitary, for hit verification *)
  circuit : Circuit.t;  (** the synthesized VUG + CNOT circuit *)
  source : Synthesis.source;
  distance : float;  (** instantiation distance of the original attempt *)
  expansions : int;  (** original QSearch expansions (attempt metadata) *)
  prunes : int;  (** original QSearch prunes (attempt metadata) *)
}

type t

(** [open_dir dir] creates [dir] if needed and loads every valid record.
    [match_global_phase] (default [true]) must agree with the library
    convention of the runs the store serves. *)
val open_dir : ?match_global_phase:bool -> string -> t

(** Exact lookup by block unitary (up to global phase when the store
    matches phases). *)
val find : t -> Mat.t -> entry option

(** Queue a synthesis outcome for persistence, keyed by the block
    unitary [u].  No-op when the result carries a [failure], or when an
    entry with an equal unitary is already held.  Thread-safe; nothing
    touches the disk until {!flush}. *)
val record : t -> Mat.t -> Synthesis.block_result -> unit

(** Replay a stored entry as a block result: the stored circuit and
    source, zeroed search counters (no QSearch ran), no failure. *)
val to_block_result : entry -> Synthesis.block_result

(** Persist pending records under the in-process and on-disk locks,
    merging with concurrent writers' appends. *)
val flush : t -> unit

(** Number of distinct entries currently held in memory. *)
val entry_count : t -> int

(** Number of records queued but not yet flushed. *)
val pending_count : t -> int

(** Number of records read from disk when the store was opened. *)
val loaded_count : t -> int

(** Number of unreadable lines skipped when the store was opened. *)
val skipped_count : t -> int

(** Number of distinct records on disk after the last {!flush} (see
    {!Store.merged_count}). *)
val merged_count : t -> int
