(* Matrix <-> JSON for on-disk records: a flat row-major array of
   re, im pairs.  Shared by the pulse and synthesis codecs.  Exact
   round-trip is load-bearing — lib/obs Json prints floats with enough
   digits that re-reading reproduces the same bits, which is what lets a
   cache hit replay the cold run's schedule byte-for-byte. *)

open Epoc_linalg
module Json = Epoc_obs.Json

let to_json (u : Mat.t) =
  let dim = Mat.rows u in
  let flat = ref [] in
  for r = dim - 1 downto 0 do
    for c = dim - 1 downto 0 do
      let z = Mat.get u r c in
      flat := Json.Num (Cx.re z) :: Json.Num (Cx.im z) :: !flat
    done
  done;
  Json.Arr !flat

let of_json dim j =
  match Json.to_list j with
  | Some l when List.length l = 2 * dim * dim ->
      let a = Array.of_list (List.filter_map Json.to_num l) in
      if Array.length a <> 2 * dim * dim then None
      else
        Some
          (Mat.init dim dim (fun r c ->
               let i = 2 * ((r * dim) + c) in
               Cx.make a.(i) a.(i + 1)))
  | _ -> None
