(* Generic crash-safe JSONL persistence: the machinery shared by the
   pulse store and the synthesis store.

   On-disk layout, under the store directory:

     <records_file>   header line + one JSON record per line (append-only)
     lock             advisory lock file serializing flushes across processes
     .<records_file>.tmp.<pid>   transient; flushes write here, then rename

   The header line carries {"format", "schema_version", "match_global_phase"};
   a version or phase-convention mismatch makes the store start empty (with
   a warning) rather than mis-read foreign records.  Records are one JSON
   object per line, so a crash mid-write can only damage the trailing
   record; loading skips any unparsable line with a warning and never
   raises.  Flushes re-read the file under the file lock, merge the
   pending records after whatever other writers appended, write the merged
   file to a temp file in the same directory and [Unix.rename] it into
   place — readers always see either the old or the new complete file.

   Concurrency: the in-process [t.lock] mutex guards the table and the
   pending queue; [flush_lock] serializes flushes between domains of one
   process (POSIX record locks do not exclude threads of the owning
   process); [Unix.lockf] on the lock file serializes flushes between
   processes. *)

module Json = Epoc_obs.Json

let log_src = Logs.Src.create "epoc.cache" ~doc:"EPOC persistent stores"

module Log = (val Logs.src_log log_src : Logs.LOG)

let lock_file = "lock"

module type CODEC = sig
  type entry

  val format_name : string
  val schema_version : int
  val records_file : string
  val canonical : match_global_phase:bool -> entry -> entry
  val key : entry -> string
  val equal : match_global_phase:bool -> entry -> entry -> bool
  val to_line : key:string -> entry -> string
  val of_line : string -> (entry, string) result
end

module Make (C : CODEC) = struct
  type t = {
    dir : string;
    match_global_phase : bool;
    lock : Mutex.t;
    table : (string, C.entry list) Hashtbl.t; (* key -> bucket *)
    mutable loaded : int; (* valid records read at open *)
    mutable skipped : int; (* unparsable lines skipped at open *)
    mutable merged : int; (* distinct records on disk after last open/flush *)
    mutable pending : string list; (* serialized records awaiting flush, newest first *)
  }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  (* One flush at a time per process; cross-process exclusion is the file
     lock taken inside [flush]. *)
  let flush_lock = Mutex.create ()

  let dir t = t.dir
  let match_global_phase t = t.match_global_phase
  let path t = Filename.concat t.dir C.records_file

  let header_line match_global_phase =
    Json.to_string
      (Json.Obj
         [
           ("format", Json.Str C.format_name);
           ("schema_version", Json.of_int C.schema_version);
           ("match_global_phase", Json.Bool match_global_phase);
         ])

  (* Header check: [Ok ()] to use the records, [Error reason] to ignore the
     file's contents (the next flush rewrites it under the current header). *)
  let check_header match_global_phase line =
    match Json.parse line with
    | Error m -> Error ("unreadable header: " ^ m)
    | Ok j -> (
        match
          ( Option.bind (Json.member "format" j) Json.to_str,
            Option.bind (Json.member "schema_version" j) Json.to_int,
            Json.member "match_global_phase" j )
        with
        | Some f, _, _ when f <> C.format_name -> Error ("foreign format " ^ f)
        | _, Some v, _ when v <> C.schema_version ->
            Error
              (Printf.sprintf "schema_version %d (this build speaks %d)" v
                 C.schema_version)
        | _, None, _ -> Error "missing schema_version"
        | _, _, Some (Json.Bool p) when p <> match_global_phase ->
            Error "different global-phase matching convention"
        | _ -> Ok ())

  (* --- open / load --------------------------------------------------------- *)

  let rec mkdir_p dir =
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then mkdir_p parent;
    if not (Sys.file_exists dir) then
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

  let read_lines file =
    match In_channel.with_open_bin file In_channel.input_all with
    | contents ->
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' contents)
    | exception Sys_error _ -> []

  let bucket_of t key = Option.value ~default:[] (Hashtbl.find_opt t.table key)

  let in_bucket t bucket e =
    List.exists (C.equal ~match_global_phase:t.match_global_phase e) bucket

  (* Load every valid record line; unparsable lines (a torn trailing write,
     manual editing) are counted and skipped, never fatal.  Records the
     codec considers equal to an already-loaded one collapse into a single
     in-memory entry, so [entry_count] counts distinct entries even over a
     store written before flush-time deduplication existed.

     Parsed entries are keyed as-is, NOT re-canonicalized: [record] wrote
     them in canonical form, and [C.canonical] is only equivalence-class
     canonical, not bit-idempotent (re-phasing an already-canonical matrix
     perturbs float bits and can flip the quantized fingerprint key, making
     every probe miss after reopen). *)
  let load_records t lines =
    List.iteri
      (fun i line ->
        match C.of_line line with
        | Ok e ->
            let key = C.key e in
            let bucket = bucket_of t key in
            if not (in_bucket t bucket e) then
              Hashtbl.replace t.table key (bucket @ [ e ]);
            t.loaded <- t.loaded + 1
        | Error m ->
            t.skipped <- t.skipped + 1;
            Log.warn (fun f ->
                f "cache %s: skipping unreadable record %d (%s)" (path t)
                  (i + 2) m))
      lines

  let entry_count_unlocked t =
    Hashtbl.fold (fun _ b acc -> acc + List.length b) t.table 0

  let open_dir ?(match_global_phase = true) dir =
    mkdir_p dir;
    let t =
      {
        dir;
        match_global_phase;
        lock = Mutex.create ();
        table = Hashtbl.create 64;
        loaded = 0;
        skipped = 0;
        merged = 0;
        pending = [];
      }
    in
    (match read_lines (path t) with
    | [] -> ()
    | header :: records -> (
        match check_header match_global_phase header with
        | Ok () -> load_records t records
        | Error reason ->
            Log.warn (fun f ->
                f "cache %s: ignoring existing store (%s); it will be rewritten"
                  (path t) reason)));
    t.merged <- entry_count_unlocked t;
    Log.debug (fun f ->
        f "cache %s: %d entries loaded, %d lines skipped" (path t) t.loaded
          t.skipped);
    t

  (* --- queries -------------------------------------------------------------- *)

  let entry_count t = locked t (fun () -> entry_count_unlocked t)
  let pending_count t = locked t (fun () -> List.length t.pending)
  let loaded_count t = t.loaded
  let skipped_count t = t.skipped
  let merged_count t = t.merged

  let find t ~key pred =
    locked t (fun () -> List.find_opt pred (bucket_of t key))

  let fold t ~init f =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ bucket acc -> List.fold_left (fun acc e -> f e acc) acc bucket)
          t.table init)

  (* --- recording / flush ----------------------------------------------------- *)

  let record t e =
    let e = C.canonical ~match_global_phase:t.match_global_phase e in
    let key = C.key e in
    locked t (fun () ->
        let bucket = bucket_of t key in
        if not (in_bucket t bucket e) then begin
          Hashtbl.replace t.table key (bucket @ [ e ]);
          t.pending <- C.to_line ~key e :: t.pending
        end)

  let with_file_lock t f =
    let lock_path = Filename.concat t.dir lock_file in
    let fd = Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.lockf fd Unix.F_LOCK 0;
        Fun.protect ~finally:(fun () -> Unix.lockf fd Unix.F_ULOCK 0) f)

  (* Persist pending records.  Under the locks, the record file is re-read
     raw so entries appended by other invocations since [open_dir] survive;
     our pending lines land after them, minus records the codec considers
     equal to ones already on disk (an exact-line comparison would let two
     writers that solved the same unitary to different metadata both land,
     and the duplicate would inflate every later count).  Disk records that
     duplicate an earlier disk record are compacted away on the same pass.
     The merged file replaces the old one atomically, and [merged] is the
     number of records it holds. *)
  let flush t =
    let pending = locked t (fun () -> List.rev t.pending) in
    if pending <> [] then begin
      Mutex.lock flush_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock flush_lock)
        (fun () ->
          with_file_lock t (fun () ->
              let disk_lines =
                match read_lines (path t) with
                | [] -> []
                | header :: records -> (
                    match check_header t.match_global_phase header with
                    | Ok () ->
                        List.filter
                          (fun l -> Result.is_ok (C.of_line l))
                          records
                    | Error _ -> [])
              in
              let eq = C.equal ~match_global_phase:t.match_global_phase in
              (* Keep the first of every equivalence class, in file order. *)
              let disk =
                List.fold_left
                  (fun kept line ->
                    match C.of_line line with
                    | Error _ -> kept
                    | Ok e ->
                        if List.exists (fun (_, d) -> eq e d) kept then kept
                        else kept @ [ (line, e) ])
                  [] disk_lines
              in
              let fresh =
                List.fold_left
                  (fun kept line ->
                    match C.of_line line with
                    | Error _ -> kept
                    | Ok e ->
                        if
                          List.exists (fun (_, d) -> eq e d) disk
                          || List.exists (fun (_, d) -> eq e d) kept
                        then kept
                        else kept @ [ (line, e) ])
                  [] pending
              in
              let tmp =
                Filename.concat t.dir
                  (Printf.sprintf ".%s.tmp.%d" C.records_file (Unix.getpid ()))
              in
              let oc = open_out_bin tmp in
              (try
                 output_string oc (header_line t.match_global_phase);
                 output_char oc '\n';
                 List.iter
                   (fun (l, _) ->
                     output_string oc l;
                     output_char oc '\n')
                   (disk @ fresh);
                 close_out oc
               with e ->
                 close_out_noerr oc;
                 (try Sys.remove tmp with Sys_error _ -> ());
                 raise e);
              Unix.rename tmp (path t);
              t.merged <- List.length disk + List.length fresh;
              Log.debug (fun f ->
                  f "cache %s: flushed %d new record%s (%d on disk)" (path t)
                    (List.length fresh)
                    (if List.length fresh = 1 then "" else "s")
                    t.merged)));
      locked t (fun () -> t.pending <- [])
    end
end
